// Command mpi-io-test is the simulated counterpart of LANL's mpi_io_test
// synthetic benchmark, with the same core parameters the paper's Figure 1
// shows (-type, -strided, -size, -nobj), extended with a tracer selector.
//
// Usage:
//
//	mpi-io-test -np 32 -strided 1 -size 65536 -nobj 64
//	mpi-io-test -np 32 -type 2 -size 1048576 -nobj 16 -tracer ltrace -show summary
package main

import (
	"flag"
	"fmt"
	"os"

	"iotaxo/internal/analysis"
	"iotaxo/internal/cluster"
	"iotaxo/internal/lanltrace"
	"iotaxo/internal/mpi"
	"iotaxo/internal/multilayer"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
	"iotaxo/internal/workload"
)

func main() {
	np := flag.Int("np", 32, "number of MPI ranks (one per node)")
	typ := flag.Int("type", 1, "1 = shared file (N-1), 2 = file per process (N-N)")
	strided := flag.Int("strided", 0, "1 = strided placement within the shared file")
	size := flag.Int64("size", 65536, "bytes per write call")
	nobj := flag.Int("nobj", 16, "objects written per rank")
	barrier := flag.Int("barrier-every", 0, "insert a barrier every k objects (0 = none)")
	collective := flag.Bool("collective", false, "use MPI_File_write_at_all (two-phase collective I/O)")
	readBack := flag.Bool("readback", false, "read every object back after the write phase")
	tracer := flag.String("tracer", "none", "tracer: none | strace | ltrace | multilayer")
	show := flag.String("show", "", "with a tracer: raw | timing | summary (comma separated)")
	traceOut := flag.String("trace-out", "", "with a tracer: directory for per-rank raw trace files")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	pattern := workload.N1NonStrided
	switch {
	case *typ == 2:
		pattern = workload.NToN
	case *strided == 1:
		pattern = workload.N1Strided
	}
	params := workload.Params{
		Pattern:      pattern,
		BlockSize:    *size,
		NObj:         *nobj,
		Path:         "/pfs/mpi_io_test.out",
		BarrierEvery: *barrier,
		Collective:   *collective,
		ReadBack:     *readBack,
	}

	cfg := cluster.Default()
	cfg.ComputeNodes = *np
	cfg.Seed = *seed
	c := cluster.New(cfg)

	switch *tracer {
	case "none":
		res := workload.Run(c.World, params)
		printResult(res)
	case "strace", "ltrace":
		var fcfg lanltrace.Config
		if *tracer == "strace" {
			fcfg = lanltrace.StraceConfig()
		} else {
			fcfg = lanltrace.DefaultConfig()
		}
		fw := lanltrace.New(fcfg)
		perRank := make([]workload.RankStats, c.Ranks())
		rep := fw.Run(c.World, params.CommandLine(), func(p *sim.Proc, r *mpi.Rank) {
			workload.Program(p, r, params, &perRank[r.RankID()])
		})
		res := workload.ResultFromStats(params, rep.Elapsed, perRank)
		printResult(res)
		fmt.Printf("tracer           : LANL-Trace (%s), %d events, %d trace bytes\n",
			fw.Mode(), rep.TraceEvents, rep.TraceBytes)
		if *traceOut != "" {
			if err := os.MkdirAll(*traceOut, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "mpi-io-test:", err)
				os.Exit(1)
			}
			for rank := range rep.PerRank {
				path := fmt.Sprintf("%s/rank%03d.trace", *traceOut, rank)
				if err := os.WriteFile(path, []byte(rep.RawTraceText(rank)), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "mpi-io-test:", err)
					os.Exit(1)
				}
			}
			fmt.Printf("raw traces       : %d files under %s\n", len(rep.PerRank), *traceOut)
		}
		for _, what := range splitComma(*show) {
			switch what {
			case "raw":
				fmt.Println("\n--- raw trace (rank 0) ---")
				fmt.Print(rep.RawTraceText(0))
			case "timing":
				fmt.Println("\n--- aggregate timing ---")
				fmt.Print(rep.AggregateTimingText())
			case "summary":
				fmt.Println("\n--- call summary ---")
				fmt.Print(rep.CallSummaryText())
			default:
				fmt.Fprintf(os.Stderr, "mpi-io-test: unknown -show item %q\n", what)
			}
		}
	case "multilayer":
		ml := multilayer.Attach(c)
		perRank := make([]workload.RankStats, c.Ranks())
		elapsed := c.World.RunToCompletion(func(p *sim.Proc, r *mpi.Rank) {
			workload.Program(p, r, params, &perRank[r.RankID()])
		})
		res := workload.ResultFromStats(params, elapsed, perRank)
		printResult(res)
		fmt.Println("\n--- multi-layer latency attribution ---")
		fmt.Print(ml.Analyze().Format())
		fmt.Println("\n--- cross-layer latency slicing ---")
		sl, err := analysis.SliceSource(ml.AllSource(), 3)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpi-io-test:", err)
			os.Exit(1)
		}
		fmt.Print(sl.Format())
		if *traceOut != "" {
			if err := writeMergedTrace(*traceOut, ml); err != nil {
				fmt.Fprintln(os.Stderr, "mpi-io-test:", err)
				os.Exit(1)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "mpi-io-test: unknown tracer %q\n", *tracer)
		os.Exit(2)
	}
}

// writeMergedTrace stores all six layers' records as one columnar (v2) trace
// with span columns, ready for tracequery -slice.
func writeMergedTrace(dir string, ml *multilayer.Session) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := dir + "/multilayer.col"
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := trace.NewColumnarWriter(f, trace.ColumnarOptions{})
	n, err := trace.Copy(w, ml.AllSource())
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("merged trace     : %d records -> %s\n", n, path)
	return nil
}

func printResult(res workload.Result) {
	fmt.Printf("pattern          : %s\n", res.Params.Pattern)
	fmt.Printf("command line     : %s\n", res.Params.CommandLine())
	fmt.Printf("ranks            : %d\n", res.Ranks)
	fmt.Printf("total bytes      : %d (%.1f MiB)\n", res.Bytes, float64(res.Bytes)/(1<<20))
	fmt.Printf("elapsed          : %v\n", res.Elapsed)
	fmt.Printf("I/O phase        : %v\n", res.IOElapsed)
	fmt.Printf("aggregate BW     : %.1f MB/s\n", res.BandwidthBps()/1e6)
	if res.BytesRead > 0 {
		fmt.Printf("read-back BW     : %.1f MB/s (%d bytes)\n", res.ReadBandwidthBps()/1e6, res.BytesRead)
	}
}

func splitComma(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
