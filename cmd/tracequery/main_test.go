package main

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

// testOptions mirrors the flag defaults (an unbounded window).
func testOptions() options {
	return options{from: math.Inf(-1), to: math.Inf(1)}
}

// writeRankMajorTrace emits ranks*perRank records grouped by rank, so the
// block index can prune rank-range queries hard.
func writeRankMajorTrace(t *testing.T, path string, ranks, perRank, perBlock int) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewColumnarWriter(f, trace.ColumnarOptions{RecordsPerBlock: perBlock})
	i := 0
	for rank := 0; rank < ranks; rank++ {
		for k := 0; k < perRank; k++ {
			r := trace.Record{
				Time: sim.Time(i) * sim.Microsecond, Dur: 10 * sim.Microsecond,
				Node: "n0", Rank: rank, PID: 100 + rank,
				Class: trace.ClassSyscall, Name: "SYS_write", Ret: "4096",
				Path: fmt.Sprintf("/pfs/rank%04d.out", rank), Offset: int64(k) * 4096, Bytes: 4096,
			}
			if err := w.Write(&r); err != nil {
				t.Fatal(err)
			}
			i++
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRankWindowQuery(t *testing.T) {
	dir := t.TempDir()
	col := filepath.Join(dir, "t.col")
	writeRankMajorTrace(t, col, 512, 16, 256)

	var out bytes.Buffer
	o := testOptions()
	o.in, o.ranks, o.workers = col, "100-131", 2
	err := run(o, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	// 32 ranks x 16 writes of 4096 bytes each.
	for _, want := range []string{
		"matched: 512 records, 512 I/O calls",
		"bytes: 2097152 total (0 read / 2097152 written)",
		"32 distinct paths",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// 512 ranks x 16 / 256 per block = 32 blocks; 32 consecutive ranks span
	// at most 3 of them.
	var decoded, total int
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "scan:") {
			if _, err := fmt.Sscanf(line, "scan: decoded %d of %d blocks", &decoded, &total); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
		}
	}
	if total != 32 || decoded > 3 {
		t.Fatalf("decoded %d of %d blocks, want <=3 of 32", decoded, total)
	}
}

func TestPrintAndSummary(t *testing.T) {
	dir := t.TempDir()
	col := filepath.Join(dir, "t.col")
	writeRankMajorTrace(t, col, 8, 4, 16)

	var out bytes.Buffer
	o := testOptions()
	o.in, o.ranks, o.print, o.limit = col, "3", true, 2
	if err := run(o, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "rank=3"); got != 2 {
		t.Fatalf("printed %d rank=3 lines, want 2:\n%s", got, out.String())
	}

	out.Reset()
	o2 := testOptions()
	o2.in, o2.summary = col, true
	if err := run(o2, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "SYS_write") {
		t.Fatalf("summary missing SYS_write:\n%s", out.String())
	}
}

func TestRejectsRowFormat(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "t.bin")
	f, err := os.Create(bin)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewBinaryWriter(f, trace.BinaryOptions{})
	r := trace.Record{Name: "SYS_read", Rank: 1, Bytes: 64}
	if err := w.Write(&r); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	ob := testOptions()
	ob.in = bin
	err = run(ob, &out)
	if err == nil || !strings.Contains(err.Error(), "traceconv") {
		t.Fatalf("want error pointing at traceconv, got %v", err)
	}
}

func TestQueryFlagErrors(t *testing.T) {
	or1 := testOptions()
	or1.ranks = "9-2"
	if _, err := buildQuery(or1); err == nil {
		t.Fatal("inverted rank range accepted")
	}
	if _, err := buildQuery(options{from: 5, to: 1, ranks: ""}); err == nil {
		t.Fatal("inverted window accepted")
	}
	oc := testOptions()
	oc.class = "nope"
	if _, err := buildQuery(oc); err == nil {
		t.Fatal("unknown class accepted")
	}
	if lo, hi, err := parseRanks("900-1000"); err != nil || lo != 900 || hi != 1000 {
		t.Fatalf("parseRanks: %d-%d, %v", lo, hi, err)
	}
}
