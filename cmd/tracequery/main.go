// Command tracequery answers analysis questions against a columnar (v2)
// trace without a full scan: the footer block index prunes blocks outside
// the query's time window, rank range, or event classes, and only the
// surviving blocks are decoded — fanned out over a worker pool.
//
// This is the query side of the taxonomy's storage axis: a row-ordered (v1)
// trace must be read end to end to answer "bytes written by ranks 900-1000
// between t=10s and t=20s"; the v2 index makes that a handful of block
// decodes. Non-columnar inputs are rejected with a pointer at traceconv.
//
// Usage:
//
//	tracequery -in trace.col                          # whole-trace summary
//	tracequery -in trace.col -ranks 900-1000 -from 10 -to 20
//	tracequery -in trace.col -class mpi,syscall -summary
//	tracequery -in trace.col -ranks 0 -print -limit 20
//	tracequery -in trace.col -slice                   # cross-layer latency slicing
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"iotaxo/internal/analysis"
	"iotaxo/internal/sim"
	"iotaxo/internal/trace"
)

type options struct {
	in       string
	from, to float64
	ranks    string
	class    string
	offset   string
	minbytes int64
	span     string
	workers  int
	summary  bool
	print    bool
	slice    bool
	paths    int
	limit    int
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "columnar (v2) trace file")
	flag.Float64Var(&o.from, "from", math.Inf(-1), "window start in seconds")
	flag.Float64Var(&o.to, "to", math.Inf(1), "window end in seconds")
	flag.StringVar(&o.ranks, "ranks", "", "rank range lo-hi (or a single rank)")
	flag.StringVar(&o.class, "class", "", "event classes, comma-separated (syscall,libcall,mpi,fsop)")
	flag.StringVar(&o.offset, "offset", "", "file-offset range lo-hi (block stats prune non-overlapping blocks)")
	flag.Int64Var(&o.minbytes, "minbytes", 0, "only records moving at least this many bytes")
	flag.StringVar(&o.span, "span", "", "causal span range lo-hi (or a single span id)")
	flag.IntVar(&o.workers, "workers", 0, "decode worker goroutines (0 = GOMAXPROCS)")
	flag.BoolVar(&o.summary, "summary", false, "print a per-call summary table")
	flag.BoolVar(&o.print, "print", false, "print matching records instead of aggregates")
	flag.BoolVar(&o.slice, "slice", false, "cross-layer latency slicing over causal spans")
	flag.IntVar(&o.paths, "paths", 3, "critical-path breakdowns to print with -slice")
	flag.IntVar(&o.limit, "limit", 0, "stop -print after this many records (0 = all)")
	flag.Parse()

	if o.in == "" {
		fmt.Fprintln(os.Stderr, "tracequery: -in is required")
		os.Exit(2)
	}
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracequery:", err)
		os.Exit(1)
	}
}

// buildQuery translates the flag values into a block-prunable predicate.
func buildQuery(o options) (trace.Query, error) {
	q := trace.MatchAll()
	if !math.IsInf(o.from, -1) || !math.IsInf(o.to, 1) {
		lo, hi := q.TimeMin, q.TimeMax
		if !math.IsInf(o.from, -1) {
			lo = sim.Time(o.from * float64(sim.Second))
		}
		if !math.IsInf(o.to, 1) {
			hi = sim.Time(o.to * float64(sim.Second))
		}
		if lo > hi {
			return q, fmt.Errorf("-from %g is after -to %g", o.from, o.to)
		}
		q = q.WithWindow(lo, hi)
	}
	if o.ranks != "" {
		lo, hi, err := parseRanks(o.ranks)
		if err != nil {
			return q, err
		}
		q = q.WithRanks(lo, hi)
	}
	if o.class != "" {
		for _, s := range strings.Split(o.class, ",") {
			c, err := trace.ParseClass(strings.TrimSpace(s))
			if err != nil {
				return q, err
			}
			q = q.WithClasses(c)
		}
	}
	if o.offset != "" {
		lo, hi, err := parseRange(o.offset)
		if err != nil {
			return q, fmt.Errorf("-offset: %w", err)
		}
		q = q.WithOffsetRange(lo, hi)
	}
	if o.minbytes > 0 {
		q = q.WithMinBytes(o.minbytes)
	}
	if o.span != "" {
		lo, hi, err := parseRange(o.span)
		if err != nil || lo < 0 {
			return q, fmt.Errorf("-span: bad range %q", o.span)
		}
		q = q.WithSpanRange(uint64(lo), uint64(hi))
	}
	return q, nil
}

// parseRange accepts "lo-hi" or a single value.
func parseRange(s string) (lo, hi int64, err error) {
	if a, b, ok := strings.Cut(s, "-"); ok {
		lo, err = strconv.ParseInt(strings.TrimSpace(a), 10, 64)
		if err == nil {
			hi, err = strconv.ParseInt(strings.TrimSpace(b), 10, 64)
		}
		if err == nil && lo > hi {
			err = fmt.Errorf("range %q is inverted", s)
		}
		return lo, hi, err
	}
	lo, err = strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	return lo, lo, err
}

// parseRanks accepts "lo-hi" or a single rank.
func parseRanks(s string) (lo, hi int, err error) {
	if a, b, ok := strings.Cut(s, "-"); ok {
		lo, err = strconv.Atoi(strings.TrimSpace(a))
		if err == nil {
			hi, err = strconv.Atoi(strings.TrimSpace(b))
		}
		if err == nil && lo > hi {
			err = fmt.Errorf("rank range %q is inverted", s)
		}
		return lo, hi, err
	}
	lo, err = strconv.Atoi(strings.TrimSpace(s))
	return lo, lo, err
}

func run(o options, stdout io.Writer) error {
	f, err := os.Open(o.in)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	format, _ := trace.DetectFormat(io.NewSectionReader(f, 0, st.Size()))
	if format != trace.FormatColumnar {
		return fmt.Errorf("%s is a %s trace; indexed queries need the columnar format — convert with: traceconv -in %s -to v2 -out %s.col",
			o.in, format, o.in, o.in)
	}
	cr, err := trace.NewColumnarReader(f, st.Size())
	if err != nil {
		return err
	}

	q, err := buildQuery(o)
	if err != nil {
		return err
	}

	if o.print {
		return printRecords(cr, q, o, stdout)
	}
	if o.slice {
		return sliceRecords(cr, q, o, stdout)
	}

	stats, scan, err := analysis.ColumnarIOStats(cr, q, o.workers)
	if err != nil {
		return err
	}
	var sum *analysis.CallSummary
	if o.summary {
		// Second indexed pass; the block cache is the OS page cache.
		if sum, _, err = analysis.ColumnarSummary(cr, q, o.workers); err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "trace: %d records in %d blocks (%d bytes)\n",
		cr.NumRecords(), cr.NumBlocks(), st.Size())
	fmt.Fprintf(stdout, "query: %s\n", describeQuery(o))
	fmt.Fprintf(stdout, "matched: %d records, %d I/O calls\n", scan.RecordsMatched, stats.Calls)
	fmt.Fprintf(stdout, "bytes: %d total (%d read / %d written)\n",
		stats.Bytes, stats.ReadBytes, stats.WriteBytes)
	fmt.Fprintf(stdout, "time in I/O: %s across %d distinct paths\n",
		stats.TimeInIO, len(stats.DistinctPath))
	pct := 100.0
	if scan.BlocksTotal > 0 {
		pct = 100 * float64(scan.BlocksDecoded) / float64(scan.BlocksTotal)
	}
	fmt.Fprintf(stdout, "scan: decoded %d of %d blocks (%.1f%%), read %d of %d file bytes%s\n",
		scan.BlocksDecoded, scan.BlocksTotal, pct, scan.BytesRead, st.Size(),
		statsPruned(scan))
	if sum != nil {
		fmt.Fprint(stdout, sum.Format())
	}
	return nil
}

// describeQuery renders the active predicate for the report header.
func describeQuery(o options) string {
	var parts []string
	if !math.IsInf(o.from, -1) || !math.IsInf(o.to, 1) {
		parts = append(parts, fmt.Sprintf("window %g-%gs", o.from, o.to))
	}
	if o.ranks != "" {
		parts = append(parts, "ranks "+o.ranks)
	}
	if o.class != "" {
		parts = append(parts, "class "+o.class)
	}
	if o.offset != "" {
		parts = append(parts, "offset "+o.offset)
	}
	if o.minbytes > 0 {
		parts = append(parts, fmt.Sprintf("bytes >= %d", o.minbytes))
	}
	if o.span != "" {
		parts = append(parts, "span "+o.span)
	}
	if len(parts) == 0 {
		return "all records"
	}
	return strings.Join(parts, ", ")
}

// printRecords streams matching records as text lines.
func printRecords(cr *trace.ColumnarReader, q trace.Query, o options, stdout io.Writer) error {
	s := cr.Scan(q, o.workers)
	defer s.Close()
	n := 0
	for {
		if o.limit > 0 && n >= o.limit {
			break
		}
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s rank=%d %s = %s <%s>%s\n",
			trace.FormatLocalTime(rec.Time), rec.Rank, rec.CallString(), rec.Ret, rec.Dur,
			spanSuffix(rec))
		n++
	}
	stats := s.Stats()
	fmt.Fprintf(stdout, "# %d records printed, decoded %d of %d blocks%s\n",
		n, stats.BlocksDecoded, stats.BlocksTotal, statsPruned(stats))
	return nil
}

// spanSuffix renders a record's causal span compactly; span-less records
// (old traces) render exactly as before.
func spanSuffix(rec trace.Record) string {
	if !rec.HasSpan() {
		return ""
	}
	return fmt.Sprintf(" [s%d<p%d]", rec.Span, rec.Parent)
}

// statsPruned reports span/offset/bytes column pruning when it fired.
func statsPruned(s trace.ScanStats) string {
	if s.BlocksPrunedByStats == 0 {
		return ""
	}
	return fmt.Sprintf(", %d pruned by column stats", s.BlocksPrunedByStats)
}

// sliceRecords drains the matching records and prints the cross-layer
// latency slicing report.
func sliceRecords(cr *trace.ColumnarReader, q trace.Query, o options, stdout io.Writer) error {
	s := cr.Scan(q, o.workers)
	defer s.Close()
	var recs []trace.Record
	for {
		rec, err := s.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		recs = append(recs, rec)
	}
	sl := analysis.SliceRecords(recs, o.paths)
	fmt.Fprint(stdout, sl.Format())
	stats := s.Stats()
	fmt.Fprintf(stdout, "# sliced %d records, decoded %d of %d blocks%s\n",
		len(recs), stats.BlocksDecoded, stats.BlocksTotal, statsPruned(stats))
	return nil
}
