// Command tracereplay drives the //TRACE pipeline end to end: trace a
// parallel application with throttling-based dependency discovery, save the
// replayable trace, replay it as a pseudo-application on a fresh simulated
// cluster, and report replay fidelity.
//
// Usage:
//
//	tracereplay -np 8 -sampled 2 -o app.trace
//	tracereplay -replay app.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"iotaxo/internal/cluster"
	"iotaxo/internal/mpi"
	"iotaxo/internal/partrace"
	"iotaxo/internal/replay"
	"iotaxo/internal/sim"
	"iotaxo/internal/workload"
)

func main() {
	np := flag.Int("np", 8, "number of MPI ranks")
	sampled := flag.Int("sampled", 2, "ranks probed with throttling (-1 = all)")
	size := flag.Int64("size", 256<<10, "bytes per write call")
	nobj := flag.Int("nobj", 8, "objects per rank")
	barrierEvery := flag.Int("barrier-every", 2, "barrier every k objects")
	out := flag.String("o", "", "write the replayable trace to this file")
	replayPath := flag.String("replay", "", "replay an existing trace file instead of generating one")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	factory := func() *cluster.Cluster {
		cfg := cluster.Default()
		cfg.ComputeNodes = *np
		cfg.Seed = *seed
		return cluster.New(cfg)
	}

	if *replayPath != "" {
		f, err := os.Open(*replayPath)
		if err != nil {
			fail(err)
		}
		tr, err := replay.ParseText(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		res, err := replay.Execute(factory(), tr)
		if err != nil {
			fail(err)
		}
		fmt.Printf("replayed %d ops across %d ranks\n", tr.OpCount(), tr.Ranks)
		fmt.Printf("original elapsed : %v\n", tr.OriginalElapsed)
		fmt.Printf("replayed elapsed : %v\n", res.Elapsed)
		fmt.Printf("fidelity error   : %.1f%%\n", replay.Fidelity(tr.OriginalElapsed, res.Elapsed)*100)
		return
	}

	params := workload.Params{
		Pattern:      workload.N1Strided,
		BlockSize:    *size,
		NObj:         *nobj,
		Path:         "/pfs/app.out",
		BarrierEvery: *barrierEvery,
	}
	program := func(p *sim.Proc, r *mpi.Rank) { workload.Program(p, r, params, nil) }

	cfg := partrace.DefaultConfig()
	cfg.SampledRanks = *sampled
	fw := partrace.New(cfg)
	fmt.Printf("generating replayable trace (%d ranks, %d probe runs)...\n", *np, *sampled)
	gen, err := fw.Generate(factory, program)
	if err != nil {
		fail(err)
	}
	fmt.Printf("application runs : %d\n", gen.Runs)
	fmt.Printf("untraced elapsed : %v\n", gen.UntracedElapsed)
	fmt.Printf("tracing elapsed  : %v (overhead %.0f%%)\n", gen.TracingElapsed, gen.OverheadFrac()*100)
	fmt.Printf("dependencies     : %d edges\n", gen.DepCount)
	fmt.Printf("trace ops        : %d\n", gen.Trace.OpCount())

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := gen.Trace.WriteText(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Printf("trace written    : %s\n", *out)
	}

	res, err := replay.Execute(factory(), gen.Trace)
	if err != nil {
		fail(err)
	}
	fmt.Printf("replayed elapsed : %v\n", res.Elapsed)
	fmt.Printf("fidelity error   : %.1f%%\n", replay.Fidelity(gen.Trace.OriginalElapsed, res.Elapsed)*100)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracereplay:", err)
	os.Exit(1)
}
